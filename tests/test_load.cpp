// serve::load + serve::trace + the engine's open-loop clock: arrival
// generators must be pure seeded functions (bit-identical at any thread
// count), traces must round-trip byte-exactly and materialise the same
// request vectors as the in-memory workload generators, closed-loop runs
// must stay byte-exact with the pre-open-loop engine, and overload must
// degrade goodput monotonically instead of deadlocking.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "accel/config.hpp"
#include "bbal/session.hpp"
#include "common/threadpool.hpp"
#include "serve/engine.hpp"
#include "serve/load.hpp"
#include "serve/trace.hpp"
#include "serve/workload.hpp"

namespace bbal {
namespace {

/// Small, cheap model shared by the suite (same shape as test_serve's).
std::shared_ptr<const llm::PreparedModel> tiny_model() {
  static const std::shared_ptr<const llm::PreparedModel> prepared = [] {
    llm::ModelConfig cfg;
    cfg.name = "load-test";
    cfg.vocab = 96;
    cfg.d_model = 64;
    cfg.n_layers = 2;
    cfg.n_heads = 2;
    cfg.d_ff = 96;
    cfg.seed = 23;
    return prepare_shared(cfg, /*eval_tokens=*/96);
  }();
  return prepared;
}

serve::Engine make_engine(int max_batch, bool with_accelerator = false,
                          const std::string& policy = "fifo",
                          std::optional<serve::Slo> slo = std::nullopt) {
  serve::Engine::Options options;
  options.max_batch = max_batch;
  options.policy = policy;
  if (with_accelerator) {
    accel::AcceleratorConfig cfg;
    cfg.array_rows = cfg.array_cols = 8;
    options.accelerator = cfg;
  }
  options.slo = slo;
  return serve::Engine::create(tiny_model(), quant::spec_of("BBFP(4,2)"),
                               quant::StrategySpec::fp32(),
                               std::move(options))
      .expect("engine");
}

serve::Report run_all(serve::Engine& engine,
                      const std::vector<serve::Request>& requests) {
  for (const serve::Request& req : requests) engine.submit(req);
  return engine.run();
}

// --- Arrival generators -----------------------------------------------------

TEST(LoadGenerators, DeterministicAcrossSeedsAndThreadCounts) {
  for (const int threads : {1, 4}) {
    common::ThreadPool::set_global_threads(threads);
    const auto uniform = serve::uniform_arrivals(64, 0.25);
    const auto poisson = serve::poisson_arrivals(64, 0.25, /*seed=*/7);
    const auto bursty = serve::bursty_arrivals(64, 0.25, /*seed=*/7);
    // Pure functions of (count, rate, seed): identical on every call and
    // at every thread count.
    EXPECT_EQ(uniform, serve::uniform_arrivals(64, 0.25));
    EXPECT_EQ(poisson, serve::poisson_arrivals(64, 0.25, 7));
    EXPECT_EQ(bursty, serve::bursty_arrivals(64, 0.25, 7));
    // Seeds matter: a different seed moves at least one arrival.
    EXPECT_NE(poisson, serve::poisson_arrivals(64, 0.25, 8));
    EXPECT_NE(bursty, serve::bursty_arrivals(64, 0.25, 8));
  }
  common::ThreadPool::set_global_threads(1);
}

TEST(LoadGenerators, TicksAreNonNegativeAndNonDecreasing) {
  for (const auto& ticks :
       {serve::uniform_arrivals(50, 0.3, /*start_tick=*/5),
        serve::poisson_arrivals(50, 0.3, 11, /*start_tick=*/5),
        serve::bursty_arrivals(50, 0.3, 11)}) {
    ASSERT_EQ(ticks.size(), 50u);
    std::int64_t prev = 0;
    for (const std::int64_t tick : ticks) {
      EXPECT_GE(tick, prev);
      prev = tick;
    }
  }
  EXPECT_EQ(serve::uniform_arrivals(50, 0.3, 5).front(), 5);
  EXPECT_GE(serve::poisson_arrivals(50, 0.3, 11, 5).front(), 5);
}

TEST(LoadGenerators, UniformSpacingMatchesRate) {
  const auto ticks = serve::uniform_arrivals(10, 0.25);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ticks[i], i * 4);
}

TEST(LoadGenerators, PoissonEmpiricalMeanNearOneOverRate) {
  constexpr double kRate = 0.1;
  constexpr int kCount = 4000;
  const auto ticks = serve::poisson_arrivals(kCount, kRate, /*seed=*/2024);
  // Mean inter-arrival gap over 4000 draws should sit near 1/rate = 10
  // ticks; +-15% leaves room for flooring and sampling noise while still
  // catching a wrong rate parameterisation (mean vs rate swap).
  const double mean_gap =
      static_cast<double>(ticks.back() - ticks.front()) / (kCount - 1);
  EXPECT_NEAR(mean_gap, 1.0 / kRate, 0.15 / kRate);
}

TEST(LoadGenerators, BurstyIsBurstier) {
  // Same nominal rate: the modulated process must show a larger maximum
  // gap (the OFF lulls) than the uniform reference's constant spacing.
  const auto uniform = serve::uniform_arrivals(200, 0.1);
  const auto bursty = serve::bursty_arrivals(200, 0.1, /*seed=*/3);
  std::int64_t max_uniform = 0, max_bursty = 0;
  for (std::size_t i = 1; i < uniform.size(); ++i) {
    max_uniform = std::max(max_uniform, uniform[i] - uniform[i - 1]);
    max_bursty = std::max(max_bursty, bursty[i] - bursty[i - 1]);
  }
  EXPECT_GT(max_bursty, max_uniform);
}

TEST(LoadGenerators, SpecDispatchAndDescription) {
  serve::ArrivalSpec spec;
  spec.kind = serve::ArrivalSpec::Kind::kPoisson;
  spec.rate = 0.1;
  spec.seed = 2024;
  EXPECT_EQ(serve::generate_arrivals(spec, 32),
            serve::poisson_arrivals(32, 0.1, 2024));
  EXPECT_EQ(serve::describe_arrivals(spec), "poisson(rate=0.1,seed=2024)");
  spec.kind = serve::ArrivalSpec::Kind::kUniform;
  EXPECT_EQ(serve::generate_arrivals(spec, 32),
            serve::uniform_arrivals(32, 0.1));
}

TEST(LoadGenerators, StampArrivals) {
  auto requests = serve::synthetic_requests(tiny_model()->config, 4,
                                            /*base_prompt_len=*/6,
                                            /*max_new_tokens=*/4);
  const std::vector<std::int64_t> ticks = {0, 3, 9};
  serve::stamp_arrivals(requests, ticks);
  EXPECT_EQ(requests[0].arrival_tick, 0);
  EXPECT_EQ(requests[1].arrival_tick, 3);
  EXPECT_EQ(requests[2].arrival_tick, 9);
  EXPECT_EQ(requests[3].arrival_tick, 0);  // beyond ticks: stamp unchanged
}

// --- Trace format -----------------------------------------------------------

TEST(Trace, RoundTripIsByteExact) {
  const auto ticks = serve::poisson_arrivals(12, 0.2, /*seed=*/5);
  auto entries = serve::shared_prefix_trace(12, ticks, /*groups=*/3,
                                            /*prefix_len=*/8);
  entries.push_back({/*arrival_tick=*/99, /*prompt_len=*/7,
                     /*max_new_tokens=*/5, /*prefix_group=*/-1,
                     /*prefix_len=*/0});
  const std::string path = testing::TempDir() + "bbal_trace_roundtrip.jsonl";
  ASSERT_TRUE(serve::write_trace(path, entries).is_ok());

  const auto read_back = serve::read_trace(path);
  ASSERT_TRUE(read_back.is_ok()) << read_back.message();
  EXPECT_EQ(read_back.value(), entries);

  // Re-writing what was read reproduces the file byte for byte — the
  // canonical-form half of the replay contract.
  const std::string copy = testing::TempDir() + "bbal_trace_rewrite.jsonl";
  ASSERT_TRUE(serve::write_trace(copy, read_back.value()).is_ok());
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_EQ(slurp(path), slurp(copy));
  EXPECT_FALSE(slurp(path).empty());
}

TEST(Trace, ParserAcceptsAnyKeyOrderAndRejectsMalformed) {
  const auto reordered = serve::parse_trace_line(
      R"({"prefix_len": 4, "max_new_tokens": 6, "arrival_tick": 2, )"
      R"("prompt_len": 9, "prefix_group": 1})");
  ASSERT_TRUE(reordered.is_ok()) << reordered.message();
  EXPECT_EQ(reordered.value(),
            (serve::TraceEntry{2, 9, 6, /*prefix_group=*/1,
                               /*prefix_len=*/4}));
  // Unknown integer keys are tolerated (forward compatibility).
  EXPECT_TRUE(serve::parse_trace_line(
                  R"({"arrival_tick": 0, "prompt_len": 3, )"
                  R"("max_new_tokens": 2, "future_field": 7})")
                  .is_ok());
  for (const char* bad : {
           "",                                         // no object
           R"({"arrival_tick": 0, "prompt_len": 3})",  // budget missing
           R"({"arrival_tick": -1, "prompt_len": 3, "max_new_tokens": 2})",
           R"({"arrival_tick": 0, "prompt_len": 0, "max_new_tokens": 2})",
           R"({"arrival_tick": 0, "prompt_len": 3, "max_new_tokens": 2)",
       })
    EXPECT_FALSE(serve::parse_trace_line(bad).is_ok()) << bad;
}

TEST(Trace, ReadErrorsNameTheLine) {
  const std::string path = testing::TempDir() + "bbal_trace_badline.jsonl";
  {
    std::ofstream out(path, std::ios::trunc);
    out << R"({"arrival_tick": 0, "prompt_len": 3, "max_new_tokens": 2})"
        << "\n\nnot json\n";
  }
  const auto result = serve::read_trace(path);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.message().find(":3:"), std::string::npos)
      << result.message();
}

TEST(Trace, MaterializeMatchesSyntheticRequests) {
  const auto& config = tiny_model()->config;
  const std::vector<std::int64_t> zeros(10, 0);
  const auto entries = serve::synthetic_trace(10, zeros,
                                              /*base_prompt_len=*/12,
                                              /*max_new_tokens=*/16);
  const auto from_trace = serve::materialize_trace(config, entries, 2024);
  const auto direct = serve::synthetic_requests(config, 10, 12, 16, 2024);
  ASSERT_EQ(from_trace.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(from_trace[i].prompt, direct[i].prompt) << "request " << i;
    EXPECT_EQ(from_trace[i].max_new_tokens, direct[i].max_new_tokens);
    EXPECT_EQ(from_trace[i].arrival_tick, 0);
  }
}

TEST(Trace, MaterializeMatchesSharedPrefixRequests) {
  const auto& config = tiny_model()->config;
  const std::vector<std::int64_t> zeros(9, 0);
  // One group reproduces shared_prefix_requests exactly: group stream 0
  // is Rng(seed), entry streams are shifted by one.
  const auto entries = serve::shared_prefix_trace(9, zeros, /*groups=*/1,
                                                  /*prefix_len=*/8,
                                                  /*suffix_len=*/4,
                                                  /*max_new_tokens=*/16);
  const auto from_trace = serve::materialize_trace(config, entries, 2024);
  const auto direct =
      serve::shared_prefix_requests(config, 9, 8, 4, 16, 2024);
  ASSERT_EQ(from_trace.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_EQ(from_trace[i].prompt, direct[i].prompt) << "request " << i;
}

TEST(Trace, MultiGroupEntriesSharePrefixWithinGroupOnly) {
  const auto& config = tiny_model()->config;
  const std::vector<std::int64_t> zeros(6, 0);
  const auto entries = serve::shared_prefix_trace(6, zeros, /*groups=*/2,
                                                  /*prefix_len=*/8);
  const auto requests = serve::materialize_trace(config, entries, 2024);
  const auto prefix_of = [&](std::size_t i) {
    return std::vector<int>(requests[i].prompt.begin(),
                            requests[i].prompt.begin() + 8);
  };
  EXPECT_EQ(prefix_of(0), prefix_of(2));  // group 0: entries 0, 2, 4
  EXPECT_EQ(prefix_of(1), prefix_of(3));  // group 1: entries 1, 3, 5
  EXPECT_NE(prefix_of(0), prefix_of(1));
}

// --- Engine open-loop clock -------------------------------------------------

TEST(OpenLoop, ClosedLoopRunsAreArrivalStampInvariant) {
  // The same mix, unstamped (closed loop) vs stamped with Poisson
  // arrivals: arrival times may only change *when* tokens are produced,
  // never *what* — streams and hashes must match, and the closed-loop
  // run must look exactly like the pre-open-loop engine (clock ==
  // steps, zero queueing before t=0).
  const auto requests = serve::shared_prefix_requests(
      tiny_model()->config, 6, /*prefix_len=*/16, /*suffix_len=*/4,
      /*max_new_tokens=*/8);
  for (const std::string& policy : {std::string("fifo"),
                                    std::string("prefix-aware")}) {
    for (const int threads : {1, 4}) {
      common::ThreadPool::set_global_threads(threads);
      auto closed_engine = make_engine(/*max_batch=*/2, false, policy);
      const serve::Report closed = run_all(closed_engine, requests);
      EXPECT_EQ(closed.clock_ticks, closed.engine_steps);

      auto stamped = requests;
      serve::stamp_arrivals(
          stamped, serve::poisson_arrivals(6, /*rate=*/0.05, /*seed=*/9));
      auto open_engine = make_engine(/*max_batch=*/2, false, policy);
      const serve::Report open = run_all(open_engine, stamped);

      EXPECT_EQ(open.stream_hash, closed.stream_hash)
          << policy << " threads=" << threads;
      ASSERT_EQ(open.results.size(), closed.results.size());
      for (std::size_t i = 0; i < closed.results.size(); ++i)
        EXPECT_EQ(open.results[i].generated, closed.results[i].generated);
      EXPECT_GE(open.clock_ticks, open.engine_steps);
    }
  }
  common::ThreadPool::set_global_threads(1);
}

TEST(OpenLoop, EngineWaitsForArrivals) {
  auto requests = serve::synthetic_requests(tiny_model()->config, 3,
                                            /*base_prompt_len=*/6,
                                            /*max_new_tokens=*/4);
  // Far-apart arrivals on an otherwise idle engine: each request is
  // admitted at exactly its arrival tick (the idle clock jumps, so no
  // simulated time is burned spinning), and queue_ticks stays 0.
  serve::stamp_arrivals(requests, std::vector<std::int64_t>{0, 100, 250});
  auto engine = make_engine(/*max_batch=*/2);
  const serve::Report report = run_all(engine, requests);
  ASSERT_EQ(report.completed, 3);
  EXPECT_EQ(report.results[1].admit_tick, 100);
  EXPECT_EQ(report.results[2].admit_tick, 250);
  EXPECT_EQ(report.results[1].queue_ticks, 0);
  EXPECT_GE(report.clock_ticks, 250);
  // Idle jumps cost no steps: the engine stepped far fewer times than
  // the clock advanced.
  EXPECT_LT(report.engine_steps, report.clock_ticks);
}

TEST(OpenLoop, ContentionShowsUpAsQueueTicks) {
  // Everyone arrives at once into one slot: request i waits for its
  // predecessors, so queue_ticks must grow strictly down the queue.
  const auto requests = serve::synthetic_requests(tiny_model()->config, 3,
                                                  /*base_prompt_len=*/6,
                                                  /*max_new_tokens=*/4);
  auto engine = make_engine(/*max_batch=*/1);
  const serve::Report report = run_all(engine, requests);
  ASSERT_EQ(report.completed, 3);
  EXPECT_EQ(report.results[0].queue_ticks, 0);
  EXPECT_GT(report.results[1].queue_ticks, 0);
  EXPECT_GT(report.results[2].queue_ticks, report.results[1].queue_ticks);
  EXPECT_GT(report.queue_delay_mean_ticks, 0.0);
}

TEST(OpenLoop, NegativeArrivalTickIsAnErrorResult) {
  auto requests = serve::synthetic_requests(tiny_model()->config, 2,
                                            /*base_prompt_len=*/6,
                                            /*max_new_tokens=*/4);
  requests[1].arrival_tick = -3;
  auto engine = make_engine(/*max_batch=*/2);
  const serve::Report report = run_all(engine, requests);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_FALSE(report.results[1].ok);
  EXPECT_NE(report.results[1].error.find("arrival_tick"), std::string::npos);
}

TEST(OpenLoop, SloRequiresAcceleratorAndPositiveThresholds) {
  serve::Engine::Options options;
  options.slo = serve::Slo{0.01, 0.001};
  // No accelerator: nothing prices time, so the SLO is rejected.
  EXPECT_FALSE(serve::Engine::create(tiny_model(), quant::spec_of("FP32"),
                                     quant::StrategySpec::fp32(),
                                     std::move(options))
                   .is_ok());
  serve::Engine::Options bad_threshold;
  accel::AcceleratorConfig cfg;
  cfg.array_rows = cfg.array_cols = 8;
  bad_threshold.accelerator = cfg;
  bad_threshold.slo = serve::Slo{0.0, 0.001};
  EXPECT_FALSE(serve::Engine::create(tiny_model(), quant::spec_of("BBFP(4,2)"),
                                     quant::StrategySpec::fp32(),
                                     std::move(bad_threshold))
                   .is_ok());
}

TEST(OpenLoop, OverloadDegradesGoodputMonotonicallyWithoutDeadlock) {
  const auto& config = tiny_model()->config;
  const auto base = serve::synthetic_requests(config, 12,
                                              /*base_prompt_len=*/6,
                                              /*max_new_tokens=*/6);

  // Calibrate the SLO from an SLO-less run of the *lowest sweep point
  // itself* so that point meets it with 50% headroom by construction:
  // the thresholds are simulated-clock quantities, deterministic per
  // model/accelerator pair.
  auto probe_engine = make_engine(/*max_batch=*/2, /*with_accelerator=*/true);
  auto probe_mix = base;
  serve::stamp_arrivals(probe_mix,
                        serve::poisson_arrivals(12, /*rate=*/0.01,
                                                /*seed=*/4));
  const serve::Report probe = run_all(probe_engine, probe_mix);
  ASSERT_EQ(probe.completed, 12);
  double worst_ttft = 0.0, worst_gap = 0.0;
  for (const serve::RequestResult& r : probe.results) {
    worst_ttft = std::max(worst_ttft, r.ttft_seconds);
    worst_gap = std::max(worst_gap, r.max_inter_token_seconds);
  }
  const serve::Slo slo{worst_ttft * 1.5, worst_gap * 1.5};

  double prev_goodput = 2.0;
  double prev_queue = -1.0;
  for (const double rate : {0.01, 0.2, 2.0}) {
    auto mix = base;
    serve::stamp_arrivals(mix,
                          serve::poisson_arrivals(12, rate, /*seed=*/4));
    auto engine =
        make_engine(/*max_batch=*/2, /*with_accelerator=*/true, "fifo", slo);
    const serve::Report report = run_all(engine, mix);
    ASSERT_EQ(report.completed, 12) << "rate " << rate;  // no deadlock
    EXPECT_TRUE(report.has_slo);
    EXPECT_LE(report.goodput_under_slo, prev_goodput) << "rate " << rate;
    EXPECT_GE(report.queue_delay_mean_ticks, prev_queue) << "rate " << rate;
    prev_goodput = report.goodput_under_slo;
    prev_queue = report.queue_delay_mean_ticks;
    if (rate == 0.01) {
      EXPECT_EQ(report.goodput_under_slo, 1.0);
    }
    if (rate == 2.0) {
      EXPECT_LT(report.goodput_under_slo, 1.0);
    }
  }
}

TEST(OpenLoop, ReportEmitsOpenLoopAndSloFields) {
  auto requests = serve::synthetic_requests(tiny_model()->config, 4,
                                            /*base_prompt_len=*/6,
                                            /*max_new_tokens=*/4);
  serve::stamp_arrivals(requests, serve::poisson_arrivals(4, 0.5, 2));
  auto engine = make_engine(/*max_batch=*/2, /*with_accelerator=*/true,
                            "fifo", serve::Slo{10.0, 10.0});
  serve::Report report = run_all(engine, requests);
  report.workload = "poisson(rate=0.5,seed=2)";
  const std::string json = report.to_json();
  for (const char* field :
       {"\"workload\"", "\"clock_ticks\"", "\"queue_delay_mean_ticks\"",
        "\"queue_delay_p99_ticks\"", "\"offered_tokens_per_tick\"",
        "\"throughput_tokens_per_tick\"", "\"p99_ttft_seconds\"",
        "\"p99_inter_token_seconds\"", "\"slo_ttft_seconds\"",
        "\"slo_met\"", "\"goodput_under_slo\""})
    EXPECT_NE(json.find(field), std::string::npos) << field;
  // A 10-second SLO on a microsecond-scale model: everyone meets it.
  EXPECT_EQ(report.goodput_under_slo, 1.0);
  EXPECT_EQ(report.slo_met, report.requests);
}

}  // namespace
}  // namespace bbal
