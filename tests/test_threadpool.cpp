// common::ThreadPool: coverage/ordering of parallel_for, exception
// propagation, nesting, the 1-thread degenerate case and the 2-D tiler.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/threadpool.hpp"

namespace bbal::common {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr int kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1)
      << "index " << i;
}

TEST(ThreadPool, ResultsMatchSerialAtAnyThreadCount) {
  // Disjoint writes -> the output is bit-identical whatever the pool size;
  // this is the determinism contract the bench gate relies on.
  constexpr int kN = 4096;
  std::vector<double> serial(kN);
  for (int i = 0; i < kN; ++i)
    serial[static_cast<std::size_t>(i)] = static_cast<double>(i) * 1.5 + 0.25;
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    std::vector<double> parallel(kN, -1.0);
    pool.parallel_for_chunks(0, kN, /*grain=*/7,
                             [&](std::int64_t c0, std::int64_t c1) {
                               for (std::int64_t i = c0; i < c1; ++i)
                                 parallel[static_cast<std::size_t>(i)] =
                                     static_cast<double>(i) * 1.5 + 0.25;
                             });
    EXPECT_EQ(parallel, serial) << threads << " threads";
  }
}

TEST(ThreadPool, ChunksPartitionTheRange) {
  ThreadPool pool(3);
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  pool.parallel_for_chunks(5, 105, /*grain=*/9,
                           [&](std::int64_t c0, std::int64_t c1) {
                             std::lock_guard<std::mutex> lk(m);
                             chunks.emplace_back(c0, c1);
                           });
  std::sort(chunks.begin(), chunks.end());
  std::int64_t expected_begin = 5;
  for (const auto& [c0, c1] : chunks) {
    EXPECT_EQ(c0, expected_begin);
    EXPECT_GT(c1, c0);
    EXPECT_LE(c1 - c0, 9);
    expected_begin = c1;
  }
  EXPECT_EQ(expected_begin, 105);
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::int64_t i) {
                          ran.fetch_add(1);
                          if (i == 57) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Cancellation: not every index after the throw needs to run.
  EXPECT_GE(ran.load(), 1);
  // The pool stays usable after a failed loop.
  std::atomic<int> after{0};
  pool.parallel_for(0, 64, [&](std::int64_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 64);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  ThreadPool pool(4);
  constexpr int kOuter = 12;
  constexpr int kInner = 256;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](std::int64_t o) {
    pool.parallel_for(0, kInner, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(o * kInner + i)].fetch_add(1);
    });
  });
  for (int i = 0; i < kOuter * kInner; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "slot " << i;
}

TEST(ThreadPool, NestedExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::int64_t o) {
                                   pool.parallel_for(0, 8, [&](std::int64_t i) {
                                     if (o == 3 && i == 5)
                                       throw std::runtime_error("inner");
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SingleThreadRunsInlineOnCallerThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  int count = 0;  // non-atomic on purpose: everything must run inline
  pool.parallel_for(0, 500, [&](std::int64_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++count;
  });
  EXPECT_EQ(count, 500);
}

TEST(ThreadPool, TilesCoverTheMatrixExactlyOnce) {
  ThreadPool pool(4);
  constexpr int kRows = 37;  // deliberately not multiples of the tile
  constexpr int kCols = 23;
  std::vector<std::atomic<int>> hits(kRows * kCols);
  pool.parallel_for_tiles(
      kRows, kCols, /*tile_rows=*/8, /*tile_cols=*/5,
      [&](const ThreadPool::Tile& t) {
        EXPECT_LE(t.row_end - t.row_begin, 8);
        EXPECT_LE(t.col_end - t.col_begin, 5);
        for (std::int64_t r = t.row_begin; r < t.row_end; ++r)
          for (std::int64_t c = t.col_begin; c < t.col_end; ++c)
            hits[static_cast<std::size_t>(r * kCols + c)].fetch_add(1);
      });
  for (int i = 0; i < kRows * kCols; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1) << "cell " << i;
}

TEST(ThreadPool, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(0, 0, [&](std::int64_t) { ++count; });
  pool.parallel_for(10, 3, [&](std::int64_t) { ++count; });
  pool.parallel_for_tiles(0, 5, 2, 2,
                          [&](const ThreadPool::Tile&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(ThreadPool, GlobalPoolHonoursSetGlobalThreads) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().thread_count(), 3);
  std::atomic<int> hits{0};
  ThreadPool::global().parallel_for(0, 128,
                                    [&](std::int64_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 128);
  ThreadPool::set_global_threads(ThreadPool::env_threads());
}

}  // namespace
}  // namespace bbal::common
