// Bit-packing round trips and the executable memory-density claims.
#include "quant/packing.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace bbal::quant {
namespace {

std::vector<double> random_data(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.heavy_tailed(1.0, 0.05, 20.0);
  return xs;
}

TEST(Packing, RoundTripExactBbfp) {
  const auto data = random_data(1, 256);
  const BlockFormat fmt = BlockFormat::bbfp(4, 2);
  const PackedBlocks packed = pack_values(data, fmt);
  const std::vector<double> q_direct = quantise(data, fmt);
  const std::vector<double> q_packed = unpack_values(packed);
  ASSERT_EQ(q_packed.size(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_DOUBLE_EQ(q_packed[i], q_direct[i]) << i;
}

TEST(Packing, RoundTripExactBfp) {
  const auto data = random_data(2, 200);  // non-multiple of block size
  const BlockFormat fmt = BlockFormat::bfp(6);
  const std::vector<double> q_direct = quantise(data, fmt);
  const std::vector<double> q_packed = unpack_values(pack_values(data, fmt));
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_DOUBLE_EQ(q_packed[i], q_direct[i]) << i;
}

TEST(Packing, NegativeZeroAndZeroBlocks) {
  std::vector<double> data(40, 0.0);
  data[3] = -0.0;
  const PackedBlocks packed = pack_values(data, BlockFormat::bbfp(6, 3));
  const std::vector<double> q = unpack_values(packed);
  for (const double v : q) EXPECT_EQ(v, 0.0);
}

TEST(Packing, BitsPerElementMatchesEquivalentBits) {
  // The executable version of Table I's "Equivalent Bit-Width" column.
  for (const auto& fmt :
       {BlockFormat::bfp(8), BlockFormat::bfp(6), BlockFormat::bbfp(8, 4),
        BlockFormat::bbfp(6, 3), BlockFormat::bbfp(4, 2)}) {
    const auto data = random_data(3, 1024);
    const PackedBlocks packed = pack_values(data, fmt);
    EXPECT_NEAR(packed.bits_per_element(), fmt.equivalent_bits(), 1e-9)
        << fmt.name();
    // Physical bytes: padding at most 7 bits total.
    EXPECT_LE(packed.bit_count(),
              static_cast<std::size_t>(fmt.equivalent_bits() * 1024) + 8)
        << fmt.name();
  }
}

TEST(Packing, MemoryEfficiencyRealisedAgainstFp16) {
  const auto data = random_data(4, 2048);
  const PackedBlocks packed = pack_values(data, BlockFormat::bfp(6));
  const double fp16_bits = 16.0 * 2048;
  EXPECT_NEAR(fp16_bits / static_cast<double>(packed.bit_count()), 2.24, 0.03);
}

TEST(Packing, PreservesFlagsAndExponents) {
  const auto data = random_data(5, 64);
  const BlockFormat fmt = BlockFormat::bbfp(6, 3);
  std::vector<EncodedBlock> blocks;
  blocks.push_back(
      encode_block(std::span<const double>(data).subspan(0, 32), fmt));
  blocks.push_back(
      encode_block(std::span<const double>(data).subspan(32, 32), fmt));
  const std::vector<EncodedBlock> back = unpack_blocks(pack_blocks(blocks));
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t b = 0; b < 2; ++b) {
    EXPECT_EQ(back[b].shared_exponent, blocks[b].shared_exponent);
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_EQ(back[b].elems[i].negative, blocks[b].elems[i].negative);
      EXPECT_EQ(back[b].elems[i].flag, blocks[b].elems[i].flag);
      EXPECT_EQ(back[b].elems[i].mantissa, blocks[b].elems[i].mantissa);
    }
  }
}

class PackingSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(PackingSweep, RoundTripAcrossConfigs) {
  const auto [m, o] = GetParam();
  const BlockFormat fmt = BlockFormat::bbfp(m, o);
  const auto data =
      random_data(100 + static_cast<std::uint64_t>(m * 8 + o), 96);
  const std::vector<double> q_direct = quantise(data, fmt);
  const std::vector<double> q_packed = unpack_values(pack_values(data, fmt));
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_DOUBLE_EQ(q_packed[i], q_direct[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PackingSweep,
    ::testing::Values(std::pair{3, 1}, std::pair{3, 2}, std::pair{4, 2},
                      std::pair{4, 3}, std::pair{6, 3}, std::pair{6, 5},
                      std::pair{8, 4}, std::pair{10, 5}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "m" + std::to_string(info.param.first) + "o" +
             std::to_string(info.param.second);
    });

}  // namespace
}  // namespace bbal::quant
