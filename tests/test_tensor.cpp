#include "llm/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace bbal::llm {
namespace {

TEST(Matrix, BasicIndexing) {
  Matrix m(2, 3);
  m.at(0, 0) = 1.0f;
  m.at(1, 2) = 5.0f;
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_FLOAT_EQ(m.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
}

TEST(Matrix, ResizeKeepsCapacityAndShape) {
  Matrix m(4, 8);
  for (std::size_t i = 0; i < m.flat().size(); ++i)
    m.flat()[i] = static_cast<float>(i);
  const float* data = m.flat().data();

  m.resize(4, 8);  // same shape: no-op, contents untouched
  EXPECT_EQ(m.flat().data(), data);
  EXPECT_FLOAT_EQ(m.at(3, 7), 31.0f);

  m.resize(2, 8);  // shrink: shape changes, storage stays put
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 8);
  EXPECT_EQ(m.flat().data(), data);

  m.resize(4, 8);  // grow back within capacity: still no reallocation
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.flat().data(), data);
}

TEST(Matmul, ReusesOutputStorageAcrossShapes) {
  Rng rng(6);
  Matrix a(5, 11), b(11, 7);
  for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
  for (float& v : b.flat()) v = static_cast<float>(rng.gaussian());

  // Warm the output with a larger product, then reuse it for a smaller
  // one: the result must match a fresh computation exactly and keep the
  // same storage (the zero-allocation decode-loop contract).
  Matrix c;
  matmul(a, b, c);
  const Matrix fresh = matmul(a, b);
  const float* data = c.flat().data();

  Matrix a2(2, 11);
  for (float& v : a2.flat()) v = static_cast<float>(rng.gaussian());
  matmul(a2, b, c);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 7);
  EXPECT_EQ(c.flat().data(), data);
  const Matrix fresh2 = matmul(a2, b);
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 7; ++j)
      EXPECT_FLOAT_EQ(c.at(i, j), fresh2.at(i, j)) << i << "," << j;

  matmul(a, b, c);  // grow back into retained capacity
  EXPECT_EQ(c.flat().data(), data);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 7; ++j)
      EXPECT_FLOAT_EQ(c.at(i, j), fresh.at(i, j)) << i << "," << j;
}

TEST(Matmul, HandComputed) {
  Matrix a(2, 2), b(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2; a.at(1, 0) = 3; a.at(1, 1) = 4;
  b.at(0, 0) = 5; b.at(0, 1) = 6; b.at(1, 0) = 7; b.at(1, 1) = 8;
  const Matrix c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Matmul, MatchesNaiveTripleLoop) {
  Rng rng(4);
  Matrix a(7, 13), b(13, 5);
  for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
  for (float& v : b.flat()) v = static_cast<float>(rng.gaussian());
  const Matrix c = matmul(a, b);
  for (int i = 0; i < 7; ++i)
    for (int j = 0; j < 5; ++j) {
      double acc = 0.0;
      for (int k = 0; k < 13; ++k)
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-4) << i << "," << j;
    }
}

TEST(Matvec, MatchesMatmulRow) {
  Rng rng(5);
  Matrix a(1, 24), b(24, 9);
  for (float& v : a.flat()) v = static_cast<float>(rng.gaussian());
  for (float& v : b.flat()) v = static_cast<float>(rng.gaussian());
  const Matrix c = matmul(a, b);
  std::vector<float> out(9);
  matvec(a.row(0), b, out);
  for (int j = 0; j < 9; ++j)
    EXPECT_FLOAT_EQ(out[static_cast<std::size_t>(j)], c.at(0, j));
}

TEST(RmsNorm, UnitGainNormalisesRms) {
  Matrix x(1, 4);
  x.at(0, 0) = 2; x.at(0, 1) = -2; x.at(0, 2) = 2; x.at(0, 3) = -2;
  const std::vector<float> gain(4, 1.0f);
  rmsnorm_rows(x, gain);
  double sq = 0.0;
  for (const float v : x.flat()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sq / 4.0), 1.0, 1e-3);
}

TEST(RmsNorm, GainScalesChannels) {
  Matrix x(1, 2);
  x.at(0, 0) = 1.0f;
  x.at(0, 1) = 1.0f;
  const std::vector<float> gain = {1.0f, 3.0f};
  rmsnorm_rows(x, gain);
  EXPECT_NEAR(x.at(0, 1) / x.at(0, 0), 3.0, 1e-5);
}

TEST(Softmax, SumsToOneAndOrders) {
  std::vector<float> xs = {1.0f, 2.0f, 3.0f};
  softmax_reference(xs);
  EXPECT_NEAR(xs[0] + xs[1] + xs[2], 1.0, 1e-6);
  EXPECT_LT(xs[0], xs[1]);
  EXPECT_LT(xs[1], xs[2]);
}

TEST(Softmax, StableForLargeInputs) {
  std::vector<float> xs = {1000.0f, 999.0f};
  softmax_reference(xs);
  EXPECT_NEAR(xs[0] + xs[1], 1.0, 1e-6);
  EXPECT_GT(xs[0], xs[1]);
  EXPECT_FALSE(std::isnan(xs[0]));
}

TEST(Silu, MatchesDefinition) {
  for (const float x : {-4.0f, -1.0f, 0.0f, 0.5f, 3.0f}) {
    const float expected = x / (1.0f + std::exp(-x));
    EXPECT_FLOAT_EQ(silu_reference(x), expected);
  }
}

TEST(AddInplace, Adds) {
  Matrix a(1, 3), b(1, 3);
  for (int j = 0; j < 3; ++j) {
    a.at(0, j) = static_cast<float>(j);
    b.at(0, j) = 10.0f;
  }
  add_inplace(a, b);
  EXPECT_FLOAT_EQ(a.at(0, 2), 12.0f);
}

}  // namespace
}  // namespace bbal::llm
